"""The OLSR/QOLSR node state machine.

An :class:`OlsrNode` owns the protocol tables of one device and implements the protocol
logic independently of how messages are transported, so the same class is driven either by
the discrete-event simulator (:mod:`repro.sim`) or directly by tests:

* it *emits* HELLO and TC messages when asked (the simulator schedules the asks);
* it *consumes* packets handed to it and returns the packets it wants to transmit in
  response (TC forwarding via the MPR flooding rule, data-packet forwarding via its routing
  table);
* it runs a pluggable :class:`~repro.core.selection.AnsSelector` to decide its advertised
  set, which is how OLSR, QOLSR and FNBP variants are simulated with the same engine.

Per Moraru & Simplot-Ryl (and the paper), flooding always uses the RFC 3626 MPR set; the
selector only controls what is *advertised* (and therefore what everyone routes on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.fnbp import FnbpSelector
from repro.core.selection import AnsSelector
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.olsr import constants
from repro.olsr.duplicate_set import DuplicateSet
from repro.olsr.messages import (
    AdvertisedLink,
    DataPacket,
    HelloMessage,
    LinkReport,
    Packet,
    TcMessage,
    next_sequence_number,
)
from repro.olsr.mpr import rfc3626_mpr
from repro.olsr.neighbor_table import NeighborTable
from repro.olsr.routing_table import RoutingTable
from repro.olsr.topology_table import TopologyTable
from repro.utils.ids import NodeId


@dataclass
class NodeStatistics:
    """Counters a node keeps about its own protocol activity."""

    hellos_sent: int = 0
    tcs_sent: int = 0
    tcs_forwarded: int = 0
    data_originated: int = 0
    data_forwarded: int = 0
    data_delivered: int = 0
    data_dropped: int = 0


class OlsrNode:
    """Protocol state and behaviour of one node."""

    def __init__(
        self,
        node_id: NodeId,
        metric: Metric,
        selector: Optional[AnsSelector] = None,
        link_weights: Optional[Mapping[NodeId, Mapping[str, float]]] = None,
        neighbor_hold_time: float = constants.NEIGHBOR_HOLD_TIME,
        topology_hold_time: float = constants.TOPOLOGY_HOLD_TIME,
    ) -> None:
        self.node_id = node_id
        self.metric = metric
        self.neighbor_hold_time = neighbor_hold_time
        self.topology_hold_time = topology_hold_time
        self.selector = selector if selector is not None else FnbpSelector()
        self.neighbor_table = NeighborTable(node_id)
        self.topology_table = TopologyTable(node_id)
        self.routing_table = RoutingTable(node_id, metric)
        self.duplicates = DuplicateSet()
        self.statistics = NodeStatistics()
        self.mpr_set: frozenset[NodeId] = frozenset()
        self.ans_set: frozenset[NodeId] = frozenset()
        self._ansn = 0
        self._link_weights: Dict[NodeId, Dict[str, float]] = {
            node: dict(weights) for node, weights in (link_weights or {}).items()
        }

    # ------------------------------------------------------------------ link measurements

    def set_link_weights(self, neighbor: NodeId, weights: Mapping[str, float]) -> None:
        """Record the locally measured QoS of the link towards ``neighbor``.

        QoS measurement itself is out of the paper's scope; the simulator injects the
        ground-truth weights of the topology here.
        """
        self._link_weights[neighbor] = dict(weights)

    def link_weights(self, neighbor: NodeId) -> Dict[str, float]:
        return dict(self._link_weights.get(neighbor, {}))

    # ------------------------------------------------------------------ local view / selection

    def local_view(self) -> LocalView:
        """The node's current ``G_u`` as reconstructed from its protocol tables."""
        return LocalView.from_tables(
            owner=self.node_id,
            neighbor_links=self.neighbor_table.neighbor_link_table(),
            two_hop_links=self.neighbor_table.two_hop_link_table(),
        )

    def refresh_selection(self) -> None:
        """Recompute the MPR set (RFC 3626) and the advertised set (pluggable selector)."""
        view = self.local_view()
        self.mpr_set = rfc3626_mpr(view)
        self.ans_set = frozenset(self.selector.select(view, self.metric).selected)
        self._ansn += 1

    # ------------------------------------------------------------------ message generation

    def make_hello(self) -> HelloMessage:
        """Build the node's periodic HELLO from its current tables."""
        reports = []
        for neighbor in sorted(self.neighbor_table.neighbors()):
            reports.append(
                LinkReport(
                    neighbor=neighbor,
                    weights=self.neighbor_table.neighbor_weights(neighbor),
                    is_mpr=neighbor in self.mpr_set,
                )
            )
        self.statistics.hellos_sent += 1
        return HelloMessage(
            originator=self.node_id,
            sequence_number=next_sequence_number(),
            links=tuple(reports),
        )

    def make_tc(self) -> Optional[TcMessage]:
        """Build the node's periodic TC message.

        The advertised links are the links towards the nodes of the node's advertised set
        (its ANS), following the paper's model in which the ANS is what TC messages carry.
        A node with an empty advertised set emits no TC, like an RFC 3626 node with no MPR
        selectors.
        """
        if not self.ans_set:
            return None
        advertised = tuple(
            AdvertisedLink(selector=neighbor, weights=self.link_weights(neighbor))
            for neighbor in sorted(self.ans_set)
        )
        self.statistics.tcs_sent += 1
        return TcMessage(
            originator=self.node_id,
            sequence_number=next_sequence_number(),
            ansn=self._ansn,
            advertised=advertised,
        )

    # ------------------------------------------------------------------ message consumption

    def handle_packet(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Process a received packet and return the packets to transmit in response."""
        message = packet.message
        if isinstance(message, HelloMessage):
            self._handle_hello(message, now)
            return []
        if isinstance(message, TcMessage):
            return self._handle_tc(packet, now)
        if isinstance(message, DataPacket):
            return self._handle_data(packet)
        raise TypeError(f"node {self.node_id} cannot handle message of type {type(message).__name__}")

    def _handle_hello(self, hello: HelloMessage, now: float) -> None:
        weights = self.link_weights(hello.originator)
        self.neighbor_table.update_from_hello(
            hello,
            link_weights=weights,
            now=now,
            hold_time=self.neighbor_hold_time,
        )

    def _handle_tc(self, packet: Packet, now: float) -> List[Packet]:
        tc: TcMessage = packet.message
        if tc.originator == self.node_id:
            return []
        if not self.duplicates.already_processed(tc.originator, tc.sequence_number):
            self.duplicates.mark_processed(
                tc.originator, tc.sequence_number, now + constants.DUPLICATE_HOLD_TIME
            )
            self.topology_table.update_from_tc(tc, now=now, hold_time=self.topology_hold_time)

        # MPR flooding rule: retransmit only messages first heard from a neighbor that
        # selected this node as MPR, at most once, while TTL remains.
        if packet.ttl <= 1:
            return []
        if self.duplicates.already_retransmitted(tc.originator, tc.sequence_number):
            return []
        if packet.sender not in self.neighbor_table.mpr_selectors():
            return []
        self.duplicates.mark_retransmitted(
            tc.originator, tc.sequence_number, now + constants.DUPLICATE_HOLD_TIME
        )
        self.statistics.tcs_forwarded += 1
        return [packet.forwarded_by(self.node_id)]

    def _handle_data(self, packet: Packet) -> List[Packet]:
        data: DataPacket = packet.message
        if data.destination == self.node_id:
            self.statistics.data_delivered += 1
            return []
        if packet.ttl <= 1:
            self.statistics.data_dropped += 1
            return []
        next_hop = self.routing_table.next_hop(data.destination)
        if next_hop is None:
            self.statistics.data_dropped += 1
            return []
        self.statistics.data_forwarded += 1
        return [packet.forwarded_by(self.node_id)]

    # ------------------------------------------------------------------ periodic maintenance

    def tick(self, now: float) -> None:
        """Expire stale state and refresh selection and routes (called periodically)."""
        self.neighbor_table.expire(now)
        self.topology_table.expire(now)
        self.duplicates.expire(now)
        self.refresh_selection()
        self.recompute_routes()

    def recompute_routes(self) -> None:
        self.routing_table.recompute(self.neighbor_table, self.topology_table)

    def originate_data(self, destination: NodeId, payload: object = None) -> Optional[Packet]:
        """Create a data packet towards ``destination`` (None when no route exists)."""
        self.statistics.data_originated += 1
        data = DataPacket(source=self.node_id, destination=destination, payload=payload)
        if destination != self.node_id and self.routing_table.next_hop(destination) is None:
            self.statistics.data_dropped += 1
            return None
        return Packet(message=data, sender=self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OlsrNode(id={self.node_id}, neighbors={len(self.neighbor_table)}, "
            f"mpr={sorted(self.mpr_set)}, ans={sorted(self.ans_set)})"
        )
