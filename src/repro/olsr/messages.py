"""OLSR control messages and data packets.

Simplified but structurally faithful versions of the RFC 3626 message formats, extended the
way QOLSR extends them: HELLO messages piggyback the sender's measured link QoS for each
declared neighbor (so receivers can build a QoS-weighted two-hop view), and TC messages carry
the QoS of each advertised link.  Messages are immutable value objects; the simulator wraps
them in :class:`Packet` envelopes that carry TTL/hop-count the way the OLSR packet header
does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.olsr.constants import MAX_TTL
from repro.utils.ids import NodeId

_sequence_counter = itertools.count(1)


def next_sequence_number() -> int:
    """A process-wide monotonically increasing message sequence number."""
    return next(_sequence_counter)


@dataclass(frozen=True)
class LinkReport:
    """One neighbor entry of a HELLO message: who, with what QoS, and of what kind."""

    neighbor: NodeId
    weights: Mapping[str, float]
    is_mpr: bool = False
    """True when the sender has selected this neighbor as MPR (the MPR-selector signal)."""


@dataclass(frozen=True)
class HelloMessage:
    """Periodic one-hop broadcast advertising the sender's links (never forwarded)."""

    originator: NodeId
    sequence_number: int
    links: Tuple[LinkReport, ...]

    def reported_neighbors(self) -> FrozenSet[NodeId]:
        return frozenset(report.neighbor for report in self.links)

    def declares_mpr(self, node: NodeId) -> bool:
        """True when this HELLO declares ``node`` as one of the sender's MPRs."""
        return any(report.neighbor == node and report.is_mpr for report in self.links)


@dataclass(frozen=True)
class AdvertisedLink:
    """One advertised link of a TC message: a selector of the originator, with its QoS."""

    selector: NodeId
    weights: Mapping[str, float]


@dataclass(frozen=True)
class TcMessage:
    """Topology-control message flooded through the MPR backbone.

    ``ansn`` is the Advertised Neighbor Sequence Number: receivers discard TC information
    older than what they already hold for the same originator.
    """

    originator: NodeId
    sequence_number: int
    ansn: int
    advertised: Tuple[AdvertisedLink, ...]

    def advertised_nodes(self) -> FrozenSet[NodeId]:
        return frozenset(link.selector for link in self.advertised)


@dataclass(frozen=True)
class DataPacket:
    """An application payload routed hop by hop by the protocol."""

    source: NodeId
    destination: NodeId
    payload: object = None
    identifier: int = field(default_factory=next_sequence_number)


@dataclass(frozen=True)
class Packet:
    """Transmission envelope: message + forwarding metadata (TTL, hop count, last sender)."""

    message: object
    sender: NodeId
    ttl: int = MAX_TTL
    hops: int = 0

    def forwarded_by(self, node: NodeId) -> "Packet":
        """The envelope after one retransmission by ``node``."""
        return Packet(message=self.message, sender=node, ttl=self.ttl - 1, hops=self.hops + 1)
