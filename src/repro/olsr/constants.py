"""Protocol timing constants.

Values follow RFC 3626's defaults (seconds).  The discrete-event simulation uses them to
schedule periodic HELLO and TC emission and to expire stale table entries; experiments that
only need the converged state use :data:`DEFAULT_CONVERGENCE_TIME` as a safe settling period
(a few HELLO and TC periods).
"""

HELLO_INTERVAL = 2.0
"""Period of HELLO emission (neighborhood sensing)."""

TC_INTERVAL = 5.0
"""Period of TC emission (topology dissemination)."""

REFRESH_INTERVAL = 2.0
"""Link refresh interval used to size validity times."""

NEIGHBOR_HOLD_TIME = 3 * REFRESH_INTERVAL
"""Validity of neighbor and two-hop entries learned from HELLOs."""

TOPOLOGY_HOLD_TIME = 3 * TC_INTERVAL
"""Validity of topology entries learned from TCs."""

DUPLICATE_HOLD_TIME = 30.0
"""How long duplicate-detection records are kept."""

MAX_TTL = 255
"""Initial TTL of flooded control messages."""

DEFAULT_CONVERGENCE_TIME = 30.0
"""Simulation time after which a static network's tables have settled (several TC periods)."""

MAX_JITTER = 0.5
"""Maximum random jitter applied to periodic emissions, as recommended by RFC 3626."""
