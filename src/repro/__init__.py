"""repro -- reproduction of "Towards an efficient QoS based selection of neighbors in QOLSR".

The library implements FNBP (First Node on Best Path QANS selection), the QOLSR and
topology-filtering baselines it is compared against, the OLSR substrate they all run on, a
discrete-event simulator with an ideal MAC layer, and the evaluation harness that regenerates
the paper's Figures 6-9.

Quick start
-----------
>>> from repro import FnbpSelector, BandwidthMetric, LocalView
>>> from repro.papergraphs import figure2_network, FIGURE2_OWNER
>>> network = figure2_network()
>>> view = LocalView.from_network(network, FIGURE2_OWNER)
>>> selection = FnbpSelector().select(view, BandwidthMetric())
>>> sorted(selection.selected)
[1, 6, 7]

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the system inventory
and experiment index.
"""

from repro.baselines import (
    OlsrMprSelector,
    QolsrMpr1Selector,
    QolsrMpr2Selector,
    TopologyFilteringSelector,
)
from repro.core import (
    AnsSelector,
    FnbpSelector,
    LoopGuardPolicy,
    SelectionDecision,
    SelectionResult,
    available_selectors,
    covering_relays,
    make_selector,
)
from repro.localview import LocalView, all_first_hops, first_hops_to
from repro.metrics import (
    BandwidthMetric,
    DelayMetric,
    HopCountMetric,
    JitterMetric,
    LexicographicMetric,
    Metric,
    MetricKind,
    PacketLossMetric,
    get_metric,
)
from repro.routing import (
    AdvertisedTopology,
    HopByHopRouter,
    OptimalRoute,
    RouteOutcome,
    advertise,
    optimal_route,
)
from repro.topology import (
    FieldSpec,
    GridNetworkGenerator,
    Network,
    PoissonNetworkGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "FnbpSelector",
    "LoopGuardPolicy",
    "covering_relays",
    "AnsSelector",
    "SelectionResult",
    "SelectionDecision",
    "available_selectors",
    "make_selector",
    # baselines
    "OlsrMprSelector",
    "QolsrMpr1Selector",
    "QolsrMpr2Selector",
    "TopologyFilteringSelector",
    # metrics
    "Metric",
    "MetricKind",
    "BandwidthMetric",
    "DelayMetric",
    "JitterMetric",
    "PacketLossMetric",
    "HopCountMetric",
    "LexicographicMetric",
    "get_metric",
    # topology / local view
    "Network",
    "FieldSpec",
    "PoissonNetworkGenerator",
    "GridNetworkGenerator",
    "LocalView",
    "first_hops_to",
    "all_first_hops",
    # routing
    "AdvertisedTopology",
    "advertise",
    "HopByHopRouter",
    "RouteOutcome",
    "OptimalRoute",
    "optimal_route",
]
