"""QoS metrics: the additive/concave metric protocol and the concrete metrics used by the paper.

Public surface
--------------
* :class:`Metric`, :class:`MetricKind`, :class:`AdditiveMetric`, :class:`ConcaveMetric` --
  the protocol every algorithm in the library is written against.
* :class:`BandwidthMetric` / :class:`DelayMetric` -- the paper's two instantiations
  (Algorithms 1 and 2).
* :class:`JitterMetric`, :class:`PacketLossMetric`, :class:`HopCountMetric`,
  :class:`EnergyCostMetric`, :class:`ResidualBufferMetric` -- the other metrics the paper
  names as compatible.
* :class:`LexicographicMetric` -- the multi-criterion extension (the paper's future work).
* Weight assigners (uniform random as in the evaluation, constant, distance-based, explicit).
* :func:`preferred_neighbor` -- the ``≺_BW`` / ``≺_D`` preference operator.
"""

from repro.metrics.assignment import (
    ConstantWeightAssigner,
    DistanceProportionalAssigner,
    ExplicitWeightAssigner,
    UniformWeightAssigner,
    WeightAssigner,
    canonical_edge,
)
from repro.metrics.bandwidth import BandwidthMetric, ResidualBufferMetric
from repro.metrics.base import AdditiveMetric, ConcaveMetric, Metric, MetricKind, path_links
from repro.metrics.composite import LexicographicMetric
from repro.metrics.delay import (
    DelayMetric,
    EnergyCostMetric,
    HopCountMetric,
    JitterMetric,
    PacketLossMetric,
)
from repro.metrics.ordering import preference_key, preferred_neighbor, rank_neighbors
from repro.registry import METRICS as _METRIC_REGISTRY

#: The ready-made single-criterion metric instances, shared library-wide.  They register
#: themselves in the unified :data:`repro.registry.METRICS` registry below; this mapping is
#: kept as a convenience snapshot of the built-ins (registry lookups, including any metrics
#: registered later by plugins, go through :func:`get_metric`).
METRICS = {
    metric.name: metric
    for metric in (
        BandwidthMetric(),
        DelayMetric(),
        JitterMetric(),
        PacketLossMetric(),
        HopCountMetric(),
        EnergyCostMetric(),
        ResidualBufferMetric(),
    )
}

for _metric in METRICS.values():
    _METRIC_REGISTRY.register(
        _metric.name,
        (lambda metric: lambda: metric)(_metric),
        description=f"{_metric.kind.name.lower()} metric ({type(_metric).__name__})",
    )
del _metric


def get_metric(name: str) -> Metric:
    """Return the shared instance of the metric registered under ``name``."""
    return _METRIC_REGISTRY.create(name)


__all__ = [
    "Metric",
    "MetricKind",
    "AdditiveMetric",
    "ConcaveMetric",
    "path_links",
    "BandwidthMetric",
    "ResidualBufferMetric",
    "DelayMetric",
    "JitterMetric",
    "PacketLossMetric",
    "HopCountMetric",
    "EnergyCostMetric",
    "LexicographicMetric",
    "WeightAssigner",
    "UniformWeightAssigner",
    "ConstantWeightAssigner",
    "DistanceProportionalAssigner",
    "ExplicitWeightAssigner",
    "canonical_edge",
    "preferred_neighbor",
    "preference_key",
    "rank_neighbors",
    "METRICS",
    "get_metric",
]
