"""The paper's neighbor-preference operators ``≺_BW`` and ``≺_D``.

Section III.A defines, for a node ``u``, a total order over its neighbors: ``w ≺ v`` when the
direct link ``(u, w)`` has the better metric value, with ties broken by the *smaller node
identifier* winning.  FNBP uses the associated max/min to pick which first-hop candidate to
add to the ANS; the QOLSR MPR-2 baseline uses the same order in its greedy phase.

``preferred_neighbor`` implements the selection directly: among a candidate set, return the
node whose direct link from ``u`` is best, breaking ties by smallest identifier.  This is the
single place where that tie-break lives.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.metrics.base import Metric
from repro.utils.ids import NodeId


def preference_key(
    metric: Metric,
    link_value: float,
    node_id: NodeId,
) -> tuple:
    """Sort key implementing the paper's ``≺`` order (smaller key = preferred)."""
    return (metric.sort_key(link_value), node_id)


def preferred_neighbor(
    candidates: Iterable[NodeId],
    metric: Metric,
    direct_link_value: Callable[[NodeId], float],
) -> Optional[NodeId]:
    """Return the candidate with the best direct-link value, ties broken by smallest id.

    Parameters
    ----------
    candidates:
        Neighbor identifiers to choose among.  Returns ``None`` when empty.
    metric:
        The QoS metric defining "best".
    direct_link_value:
        Callable mapping a candidate ``w`` to the value of the direct link ``(u, w)``.
    """
    best: Optional[NodeId] = None
    best_key: Optional[tuple] = None
    for candidate in candidates:
        key = preference_key(metric, direct_link_value(candidate), candidate)
        if best_key is None or key < best_key:
            best, best_key = candidate, key
    return best


def rank_neighbors(
    candidates: Iterable[NodeId],
    metric: Metric,
    direct_link_value: Callable[[NodeId], float],
) -> Sequence[NodeId]:
    """Return ``candidates`` sorted from most to least preferred under ``≺``."""
    return sorted(
        candidates,
        key=lambda candidate: preference_key(metric, direct_link_value(candidate), candidate),
    )
