"""Bandwidth -- the paper's concave example metric.

The bandwidth of a path is the minimum bandwidth over its links (the bottleneck), and a
larger bandwidth is better.  Algorithm 1 of the paper is FNBP instantiated with this metric;
the evaluation's Figures 6 and 8 use it.
"""

from __future__ import annotations

from repro.metrics.base import ConcaveMetric


class BandwidthMetric(ConcaveMetric):
    """Link bandwidth in arbitrary units (the paper uses dimensionless uniform weights)."""

    name = "bandwidth"


class ResidualBufferMetric(ConcaveMetric):
    """Number of free buffers along a path (the paper's other concave example).

    The value of a path is the smallest number of buffers available at any relay; more is
    better.  Functionally identical to bandwidth but kept as a distinct, explicitly named
    metric so experiments and traces remain self-describing.
    """

    name = "residual_buffers"
