"""Assignment of QoS weights to the links of a network.

The paper's simulation draws every link weight "uniformly at random in a fixed interval".
:class:`UniformWeightAssigner` reproduces that, deterministically from a seed; the other
assigners support the worked examples (explicit weights) and extensions (distance-dependent
delay, energy models).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.metrics.base import Metric
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng
from repro.utils.validation import require_positive

Edge = Tuple[NodeId, NodeId]


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the undirected edge (u, v) in canonical (sorted) order.

    Links in the reproduced model are bidirectional and carry a single weight per metric, so
    every weight table is keyed by the canonical orientation.
    """
    return (u, v) if u <= v else (v, u)


class WeightAssigner(ABC):
    """Produces, for one metric, a weight for every link of a network."""

    #: The metric whose edge attribute this assigner populates.
    metric: Metric

    #: True when a link's weight does not depend on node positions (only on the edge and
    #: the assigner's own state).  The dynamic-topology driver requires this: it draws a
    #: link's weights once, when the link (re)appears, so a position-dependent draw would
    #: silently go stale as nodes move (see :class:`repro.mobility.dynamic.DynamicTopology`).
    position_independent: bool = True

    @abstractmethod
    def assign(self, edges: list[Edge], positions: Mapping[NodeId, Tuple[float, float]]) -> Dict[Edge, float]:
        """Return a weight for every edge (keys are canonical edges)."""


@dataclass
class UniformWeightAssigner(WeightAssigner):
    """Draw each link weight independently and uniformly from ``[low, high]``.

    This is the paper's setting.  The draw is a pure function of ``(seed, metric name, edge)``
    so that re-generating the same topology with the same seed yields identical weights
    regardless of edge iteration order.
    """

    metric: Metric
    low: float = 1.0
    high: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.high, "high")
        if self.low > self.high:
            raise ValueError(f"low ({self.low}) must not exceed high ({self.high})")
        self.metric.validate_link_value(self.low if self.low > 0 else self.high)

    def assign(
        self,
        edges: list[Edge],
        positions: Mapping[NodeId, Tuple[float, float]],
    ) -> Dict[Edge, float]:
        weights: Dict[Edge, float] = {}
        for edge in edges:
            edge = canonical_edge(*edge)
            rng = spawn_rng(self.seed, "link-weight", self.metric.name, edge)
            weights[edge] = rng.uniform(self.low, self.high)
        return weights


@dataclass
class ConstantWeightAssigner(WeightAssigner):
    """Assign the same weight to every link (useful for hop-count and control experiments)."""

    metric: Metric
    value: float = 1.0

    def assign(
        self,
        edges: list[Edge],
        positions: Mapping[NodeId, Tuple[float, float]],
    ) -> Dict[Edge, float]:
        value = self.metric.validate_link_value(self.value)
        return {canonical_edge(*edge): value for edge in edges}


@dataclass
class DistanceProportionalAssigner(WeightAssigner):
    """Weight proportional to the Euclidean link length, plus a constant offset.

    A simple physical model: propagation delay and transmission energy both grow with
    distance.  ``weight = offset + scale * |uv|``.  Used by the energy/delay extension
    examples; not part of the paper's own evaluation.
    """

    metric: Metric
    scale: float = 0.01
    offset: float = 1.0

    position_independent = False

    def assign(
        self,
        edges: list[Edge],
        positions: Mapping[NodeId, Tuple[float, float]],
    ) -> Dict[Edge, float]:
        weights: Dict[Edge, float] = {}
        for u, v in edges:
            (x1, y1), (x2, y2) = positions[u], positions[v]
            distance = math.hypot(x1 - x2, y1 - y2)
            value = self.metric.validate_link_value(self.offset + self.scale * distance)
            weights[canonical_edge(u, v)] = value
        return weights


@dataclass
class ExplicitWeightAssigner(WeightAssigner):
    """Use a caller-provided weight table (the paper's worked-example figures)."""

    metric: Metric
    weights: Mapping[Edge, float] = None  # type: ignore[assignment]

    def assign(
        self,
        edges: list[Edge],
        positions: Mapping[NodeId, Tuple[float, float]],
    ) -> Dict[Edge, float]:
        if self.weights is None:
            raise ValueError("ExplicitWeightAssigner requires a weight table")
        table = {canonical_edge(*edge): value for edge, value in self.weights.items()}
        missing = [edge for edge in map(lambda e: canonical_edge(*e), edges) if edge not in table]
        if missing:
            raise ValueError(f"no explicit weight provided for edges: {sorted(missing)}")
        return {
            canonical_edge(*edge): self.metric.validate_link_value(table[canonical_edge(*edge)])
            for edge in edges
        }
