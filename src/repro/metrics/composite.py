"""Multi-criterion metrics -- the paper's stated future work.

The conclusion of the paper announces "multi-criterion metrics, for example minimizing
energy-consumption while providing good bandwidth".  This module implements the standard
lexicographic composition: a primary metric decides, and ties (up to the primary metric's
tolerance) are broken by a secondary metric, and so on.  Because the composite still exposes
the :class:`~repro.metrics.base.Metric` protocol, FNBP and every baseline can run on it
unchanged -- which is exactly the property the paper claims for its algorithm.

Path values under a composite metric are tuples, one component per criterion, combined
component-wise with each criterion's own rule.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.metrics.base import Metric, MetricKind


class LexicographicMetric(Metric):
    """Combine several metrics lexicographically (earlier criteria dominate).

    Parameters
    ----------
    criteria:
        The component metrics in order of decreasing priority.  At least one is required.
    name:
        Optional explicit name; defaults to ``"lex(<c1>,<c2>,...)"``.
    """

    kind = MetricKind.ADDITIVE  # nominal; composition is per-component

    @property
    def prefix_optimal(self) -> bool:
        # Lexicographic comparison of componentwise sums is preserved when a common suffix
        # is added, so the composite is prefix-optimal exactly when every component is; one
        # concave (min-composed) component breaks it, because the suffix's bottleneck can
        # erase a prefix's disadvantage.
        return all(metric.prefix_optimal for metric in self.criteria)

    def __init__(self, criteria: Sequence[Metric], name: str | None = None):
        if not criteria:
            raise ValueError("a lexicographic metric needs at least one criterion")
        self.criteria: Tuple[Metric, ...] = tuple(criteria)
        self.name = name or "lex(" + ",".join(metric.name for metric in self.criteria) + ")"

    # ------------------------------------------------------------------ composition

    @property
    def identity(self) -> tuple:  # type: ignore[override]
        return tuple(metric.identity for metric in self.criteria)

    @property
    def worst(self) -> tuple:  # type: ignore[override]
        return tuple(metric.worst for metric in self.criteria)

    def combine(self, path_value: tuple, link_value: tuple) -> tuple:  # type: ignore[override]
        self._check_arity(path_value)
        self._check_arity(link_value)
        return tuple(
            metric.combine(p, l)
            for metric, p, l in zip(self.criteria, path_value, link_value)
        )

    # ------------------------------------------------------------------ ordering

    def is_better(self, a: tuple, b: tuple) -> bool:  # type: ignore[override]
        self._check_arity(a)
        self._check_arity(b)
        for metric, component_a, component_b in zip(self.criteria, a, b):
            if metric.is_better(component_a, component_b):
                return True
            if metric.is_better(component_b, component_a):
                return False
        return False

    def values_equal(self, a: tuple, b: tuple) -> bool:  # type: ignore[override]
        self._check_arity(a)
        self._check_arity(b)
        return all(
            metric.values_equal(component_a, component_b)
            for metric, component_a, component_b in zip(self.criteria, a, b)
        )

    def is_usable(self, value: tuple) -> bool:  # type: ignore[override]
        # A path is usable when its dominant criterion is usable; lower-priority criteria
        # being "worst" (e.g. zero residual energy reported optimistically) still means the
        # destination is reachable.
        self._check_arity(value)
        return self.criteria[0].is_usable(value[0])

    def sort_key(self, value: tuple) -> tuple:  # type: ignore[override]
        self._check_arity(value)
        return tuple(metric.sort_key(component) for metric, component in zip(self.criteria, value))

    # ------------------------------------------------------------------ edge access

    def cache_token(self) -> object:
        # Extraction is determined by the criteria (type, order and their own rules), not
        # by the display name, which callers may override freely.
        return (type(self), tuple(metric.cache_token() for metric in self.criteria))

    def link_value_from_attributes(self, attributes: dict) -> tuple:  # type: ignore[override]
        return tuple(metric.link_value_from_attributes(attributes) for metric in self.criteria)

    def validate_link_value(self, value: tuple) -> tuple:  # type: ignore[override]
        self._check_arity(value)
        return tuple(
            metric.validate_link_value(component)
            for metric, component in zip(self.criteria, value)
        )

    # ------------------------------------------------------------------ helpers

    def _check_arity(self, value: object) -> None:
        if not isinstance(value, tuple) or len(value) != len(self.criteria):
            raise TypeError(
                f"{self.name} values are tuples of arity {len(self.criteria)}, got {value!r}"
            )
