"""Delay and the other additive metrics mentioned by the paper.

The delay of a path is the sum of the per-link delays and a smaller delay is better.
Algorithm 2 of the paper is FNBP instantiated with this metric; the evaluation's Figures 7
and 9 use it.  Jitter and packet loss are "also additive metrics" per the paper, so they are
provided here with the same composition rule; hop count is the degenerate additive metric
that recovers plain shortest-hop routing and is handy in tests.
"""

from __future__ import annotations

import math

from repro.metrics.base import AdditiveMetric


class DelayMetric(AdditiveMetric):
    """Per-link transmission/propagation delay (arbitrary units)."""

    name = "delay"


class JitterMetric(AdditiveMetric):
    """Per-link delay variation, accumulated additively along the path."""

    name = "jitter"


class PacketLossMetric(AdditiveMetric):
    """Packet loss treated additively, as the paper does.

    Strictly speaking loss probabilities compose multiplicatively; the standard trick --
    which the QoS-routing literature the paper cites also uses -- is to carry
    ``-log(1 - p)`` as the link value so that addition of link values corresponds to
    multiplication of success probabilities.  :meth:`from_probability` and
    :meth:`to_probability` perform that conversion so callers can think in probabilities
    while the routing machinery stays additive.
    """

    name = "packet_loss"

    @staticmethod
    def from_probability(loss_probability: float) -> float:
        """Convert a per-link loss probability in [0, 1) to an additive link value."""
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss probability must lie in [0, 1), got {loss_probability!r}")
        return -math.log(1.0 - loss_probability)

    @staticmethod
    def to_probability(path_value: float) -> float:
        """Convert an accumulated additive path value back to an end-to-end loss probability."""
        if path_value < 0:
            raise ValueError(f"path values must be non-negative, got {path_value!r}")
        return 1.0 - math.exp(-path_value)


class HopCountMetric(AdditiveMetric):
    """Hop count: every link costs exactly one.

    With this metric FNBP degenerates to classical shortest-hop behaviour, which is a useful
    sanity check (and matches the original OLSR assumption that "all links are equal").
    """

    name = "hops"

    def validate_link_value(self, value: float) -> float:
        value = super().validate_link_value(value)
        return 1.0


class EnergyCostMetric(AdditiveMetric):
    """Energy consumed when forwarding over a link, accumulated along the path.

    The paper's future-work section mentions energy-aware multi-criterion selection; this
    metric (together with :class:`repro.metrics.composite.LexicographicMetric`) implements
    that extension.
    """

    name = "energy_cost"
