"""The QoS metric protocol.

The paper's algorithms are written twice -- once for *bandwidth* (a **concave** metric: the
value of a path is the minimum over its links, larger is better) and once for *delay* (an
**additive** metric: the value of a path is the sum over its links, smaller is better) -- and
the authors note that any other metric of either family (jitter, packet loss, residual
energy, ...) works identically.  This module captures that family structure once, so that a
single implementation of the path solver, of FNBP and of every baseline serves all metrics.

A :class:`Metric` answers four questions:

* how to **extend** a path value with one more link (:meth:`Metric.combine`);
* what the value of the **empty path** is (:attr:`Metric.identity`);
* what value means **unreachable** (:attr:`Metric.worst`);
* which of two values is **better** (:meth:`Metric.is_better`), with a tolerance-aware
  equality (:meth:`Metric.values_equal`) used when collecting *all* optimal first hops.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from enum import Enum
from typing import Iterable, Optional, Sequence


class MetricKind(Enum):
    """The two metric families handled by the paper's algorithms."""

    ADDITIVE = "additive"
    """Path value is the sum of link values (delay, jitter, loss, hop count)."""

    CONCAVE = "concave"
    """Path value is the minimum of link values (bandwidth, residual buffers, energy)."""


class Metric(ABC):
    """A link-quality metric together with its path-composition rule and ordering.

    Concrete subclasses fix the four protocol pieces described in the module docstring.
    Instances are stateless and therefore safe to share between nodes and experiments.
    """

    #: Short machine-readable name, also used as the edge-attribute key on graphs.
    name: str = "metric"

    #: Whether path values are sums or minima of link values.
    kind: MetricKind = MetricKind.ADDITIVE

    #: Relative tolerance used by :meth:`values_equal` when deciding that two paths are
    #: "equally good".  The paper's topologies use small integer weights, so exact equality
    #: would suffice there, but experiments draw real-valued weights.
    rel_tol: float = 1e-9

    @property
    def prefix_optimal(self) -> bool:
        """Whether every prefix of an optimal path is itself optimal under this metric.

        The single-pass ``owner-dijkstra`` first-hop method propagates first-hop sets
        across *tight* links rooted at the owner, which is only complete when a path can be
        optimal exclusively through optimal prefixes.  That holds for plain additive
        composition (adding a common suffix preserves every componentwise difference) but
        fails as soon as composition can erase differences -- ``min`` makes a bottleneck
        path optimal even when its prefix is not, which is also why concave metrics use the
        ``bottleneck-forest`` method instead.  Conservative default: False; the stock
        additive family overrides it, and composites derive it from their components.
        Subclasses that override :meth:`combine` with non-additive semantics must leave it
        (or set it back to) False.
        """
        return False

    # ------------------------------------------------------------------ composition

    @property
    @abstractmethod
    def identity(self) -> float:
        """Value of the empty path (combining it with any link value yields that value)."""

    @property
    @abstractmethod
    def worst(self) -> float:
        """Value representing an unreachable destination (worse than any real path)."""

    @abstractmethod
    def combine(self, path_value: float, link_value: float) -> float:
        """Return the value of a path extended by one link of value ``link_value``."""

    def path_value(self, link_values: Iterable[float]) -> float:
        """Value of a whole path given the values of its links, in order.

        An empty iterable denotes the empty path and returns :attr:`identity`.
        """
        value = self.identity
        for link_value in link_values:
            value = self.combine(value, link_value)
        return value

    # ------------------------------------------------------------------ ordering

    @abstractmethod
    def is_better(self, a: float, b: float) -> bool:
        """Return True when value ``a`` is *strictly* better than value ``b``."""

    def values_equal(self, a: float, b: float) -> bool:
        """Tolerance-aware equality of two path/link values."""
        if a == b:
            return True
        if math.isinf(a) or math.isinf(b):
            return a == b
        return math.isclose(a, b, rel_tol=self.rel_tol, abs_tol=self.rel_tol)

    def is_better_or_equal(self, a: float, b: float) -> bool:
        """Return True when ``a`` is at least as good as ``b`` (up to tolerance)."""
        return self.is_better(a, b) or self.values_equal(a, b)

    def better_of(self, a: float, b: float) -> float:
        """Return the better of two values."""
        return a if self.is_better(a, b) else b

    def optimum(self, values: Iterable[float], default: Optional[float] = None) -> float:
        """Return the best value among ``values`` (``default`` / :attr:`worst` if empty)."""
        best: Optional[float] = None
        for value in values:
            if best is None or self.is_better(value, best):
                best = value
        if best is None:
            return self.worst if default is None else default
        return best

    def is_usable(self, value: float) -> bool:
        """Return True when ``value`` denotes a real (reachable) path."""
        return not self.values_equal(value, self.worst) and not self.is_better(self.worst, value)

    # ------------------------------------------------------------------ priority-queue support

    def sort_key(self, value: float) -> float:
        """Map ``value`` to a float such that *smaller keys are better*.

        This is what lets a single binary-heap Dijkstra serve both metric families: additive
        metrics already order that way, concave metrics are negated.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ edge-attribute access

    def cache_token(self) -> object:
        """Hashable token identifying this metric's link-value *extraction rule*.

        Per-view compact-graph caches key on this: two metrics with equal tokens must
        extract identical link values from any edge-attribute mapping.  The default --
        the concrete class plus the attribute name it reads -- is correct for every
        single-attribute metric; metrics whose extraction depends on more state (e.g.
        composites) must override it accordingly.
        """
        return (type(self), self.name)

    def link_value_from_attributes(self, attributes: dict) -> float:
        """Extract this metric's link value from an edge-attribute mapping.

        By default the value is stored under the metric's :attr:`name`.  Composite metrics
        override this to assemble their value from several attributes at once.
        """
        try:
            return attributes[self.name]
        except KeyError as exc:
            raise KeyError(
                f"edge has no {self.name!r} attribute; available: {sorted(attributes)}"
            ) from exc

    # ------------------------------------------------------------------ niceties

    def validate_link_value(self, value: float) -> float:
        """Check that ``value`` is a legal weight for a single link under this metric."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"{self.name} link values must be numbers, got {type(value).__name__}")
        if not math.isfinite(value):
            raise ValueError(f"{self.name} link values must be finite, got {value!r}")
        return float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, kind={self.kind.value})"


class AdditiveMetric(Metric):
    """Base class for additive metrics (path value = sum of link values, smaller is better)."""

    kind = MetricKind.ADDITIVE

    @property
    def prefix_optimal(self) -> bool:
        return True

    @property
    def identity(self) -> float:
        return 0.0

    @property
    def worst(self) -> float:
        return math.inf

    def combine(self, path_value: float, link_value: float) -> float:
        return path_value + link_value

    def is_better(self, a: float, b: float) -> bool:
        return a < b and not self.values_equal(a, b)

    def sort_key(self, value: float) -> float:
        return value

    def validate_link_value(self, value: float) -> float:
        value = super().validate_link_value(value)
        if value < 0:
            raise ValueError(f"{self.name} link values must be non-negative, got {value!r}")
        return value


class ConcaveMetric(Metric):
    """Base class for concave metrics (path value = min of link values, larger is better)."""

    kind = MetricKind.CONCAVE

    @property
    def identity(self) -> float:
        return math.inf

    @property
    def worst(self) -> float:
        return 0.0

    def combine(self, path_value: float, link_value: float) -> float:
        return min(path_value, link_value)

    def is_better(self, a: float, b: float) -> bool:
        return a > b and not self.values_equal(a, b)

    def sort_key(self, value: float) -> float:
        return -value

    def validate_link_value(self, value: float) -> float:
        value = super().validate_link_value(value)
        if value <= 0:
            raise ValueError(f"{self.name} link values must be strictly positive, got {value!r}")
        return value


def path_links(path: Sequence[object]) -> list[tuple[object, object]]:
    """Return the consecutive (u, v) link pairs of a node path.

    A path with fewer than two nodes has no links.  Shared here because path-value
    computations appear in the solver, the router and the evaluation harness.
    """
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]
